//! Occupancy-driven stepping vs. the full-scan reference.
//!
//! The active-set stepping mode (`Network::run_until`) must be *bit-
//! identical* to the full-scan reference (`Network::run_until_reference`):
//! the active lists are iterated in the exact order the full scans visit
//! the same slots, so every arbitration, every counter increment, every
//! float accumulation and every trace byte must match. These tests pin
//! that contract over the fig. 3 operating range, multi-hop topologies,
//! both crossbar kinds, and the deadlock-prone ring (the stall report and
//! its waits-for graph must classify identically).

use flitnet::VcPartition;
use mediaworm::{
    sim, CrossbarKind, Network, RouterConfig, SchedulerKind, SimOpts, SimOutcome, WatchdogConfig,
};
use netsim::{Cycles, JsonlSink};
use proptest::prelude::*;
use topo::Topology;
use traffic::{PolicingMode, StreamClass, Workload, WorkloadBuilder, WorkloadSpec};

/// The fig. 3 load grid (fractions of link bandwidth).
const LOADS: [f64; 5] = [0.6, 0.7, 0.8, 0.9, 0.96];

/// Every discipline in the scheduler zoo, for identity grids that must
/// cover them all.
const ZOO: [SchedulerKind; 6] = [
    SchedulerKind::VirtualClock,
    SchedulerKind::Fifo,
    SchedulerKind::RoundRobin,
    SchedulerKind::Wfq,
    SchedulerKind::Drr,
    SchedulerKind::Scfq,
];

fn fig3_policed(load: f64, seed: u64, policing: PolicingMode) -> Workload {
    WorkloadBuilder::new(8, VcPartition::from_mix(16, 80.0, 20.0))
        .load(load)
        .mix(80.0, 20.0)
        .real_time_class(StreamClass::Vbr)
        .policing(policing)
        .seed(seed)
        .build()
}

fn fig3_workload(load: f64, seed: u64) -> Workload {
    fig3_policed(load, seed, PolicingMode::Off)
}

/// Every observable of the two outcomes must match, floats bit-for-bit.
fn assert_outcomes_identical(fast: &SimOutcome, slow: &SimOutcome, what: &str) {
    assert_eq!(fast.injected_msgs, slow.injected_msgs, "{what}: injected");
    assert_eq!(
        fast.delivered_msgs, slow.delivered_msgs,
        "{what}: delivered"
    );
    assert_eq!(fast.counters, slow.counters, "{what}: telemetry counters");
    assert_eq!(fast.stall, slow.stall, "{what}: stall classification");
    assert_eq!(
        fast.audit_violations, slow.audit_violations,
        "{what}: audit violations"
    );
    assert_eq!(
        fast.jitter.mean_ms.to_bits(),
        slow.jitter.mean_ms.to_bits(),
        "{what}: jitter mean"
    );
    assert_eq!(
        fast.jitter.std_ms.to_bits(),
        slow.jitter.std_ms.to_bits(),
        "{what}: jitter std"
    );
    assert_eq!(
        fast.jitter.p99_ms.to_bits(),
        slow.jitter.p99_ms.to_bits(),
        "{what}: jitter p99"
    );
    assert_eq!(
        fast.be_mean_latency_us.to_bits(),
        slow.be_mean_latency_us.to_bits(),
        "{what}: best-effort latency"
    );
    assert_eq!(fast.be_msgs, slow.be_msgs, "{what}: best-effort count");
    assert_eq!(
        fast.in_flight_at_end, slow.in_flight_at_end,
        "{what}: in flight at end"
    );
}

#[test]
fn fig3_load_grid_is_bit_identical_to_reference() {
    let topology = Topology::single_switch(8);
    for kind in [SchedulerKind::VirtualClock, SchedulerKind::Fifo] {
        for &load in &LOADS {
            let cfg = RouterConfig::default().scheduler(kind);
            let fast = sim::run_opts(
                &topology,
                fig3_workload(load, 42),
                &cfg,
                0.01,
                0.03,
                SimOpts::standard(),
            );
            let slow = sim::run_opts(
                &topology,
                fig3_workload(load, 42),
                &cfg,
                0.01,
                0.03,
                SimOpts::standard().reference(),
            );
            assert!(fast.delivered_msgs > 0, "{kind:?} load {load} must flow");
            assert_outcomes_identical(&fast, &slow, &format!("{kind:?} load {load}"));
        }
    }
}

/// The new disciplines (round-robin, WFQ, DRR, SCFQ) crossed with NI
/// policing must be bit-identical on the memoized fast path and the
/// unmemoized full-scan reference — same contract the Virtual Clock and
/// FIFO grid above enforces.
#[test]
fn scheduler_zoo_and_policing_are_bit_identical_to_reference() {
    let topology = Topology::single_switch(8);
    for kind in [
        SchedulerKind::RoundRobin,
        SchedulerKind::Wfq,
        SchedulerKind::Drr,
        SchedulerKind::Scfq,
    ] {
        let cfg = RouterConfig::default().scheduler(kind);
        for mode in PolicingMode::ALL {
            let what = format!("{kind:?} policing {mode}");
            let fast = sim::run_opts(
                &topology,
                fig3_policed(0.9, 42, mode),
                &cfg,
                0.005,
                0.015,
                SimOpts::standard(),
            );
            let slow = sim::run_opts(
                &topology,
                fig3_policed(0.9, 42, mode),
                &cfg,
                0.005,
                0.015,
                SimOpts::standard().reference(),
            );
            assert!(fast.delivered_msgs > 0, "{what}: traffic must flow");
            assert_outcomes_identical(&fast, &slow, &what);
        }
    }
}

/// Every zoo discipline survives a mid-run snapshot/restore: the
/// restored run must land on the same counters and a byte-equal
/// end-of-run snapshot as the uninterrupted one. Shape policing rides
/// along so the token buckets' state is exercised too.
#[test]
fn scheduler_zoo_survives_mid_run_snapshot_restore() {
    let topology = Topology::single_switch(8);
    for kind in ZOO {
        for mode in [PolicingMode::Off, PolicingMode::Shape] {
            let what = format!("{kind:?} policing {mode}");
            let cfg = RouterConfig::default().scheduler(kind);
            let mut full = Network::new(&topology, fig3_policed(0.9, 42, mode), &cfg);
            let tb = full.timebase();
            let warmup = tb.cycles_from_secs(0.001);
            let mid = tb.cycles_from_secs(0.004);
            let end = tb.cycles_from_secs(0.008);
            full.set_warmup_end(warmup);
            full.run_until(end);
            assert!(full.delivered_msgs() > 0, "{what}: traffic must flow");

            let mut pre = Network::new(&topology, fig3_policed(0.9, 42, mode), &cfg);
            pre.set_warmup_end(warmup);
            pre.run_until(mid);
            let bytes = pre.snapshot();

            let mut post = Network::new(&topology, fig3_policed(0.9, 42, mode), &cfg);
            post.restore(&bytes).expect("restore");
            post.run_until(end);
            assert_eq!(
                full.injected_msgs(),
                post.injected_msgs(),
                "{what}: injected"
            );
            assert_eq!(full.counters(), post.counters(), "{what}: counters");
            assert!(
                full.snapshot() == post.snapshot(),
                "{what}: end-of-run snapshots differ"
            );
        }
    }
}

#[test]
fn full_crossbar_is_bit_identical_to_reference() {
    let topology = Topology::single_switch(8);
    let cfg = RouterConfig::default().crossbar(CrossbarKind::Full);
    for &load in &[0.7, 0.96] {
        let fast = sim::run_opts(
            &topology,
            fig3_workload(load, 11),
            &cfg,
            0.01,
            0.03,
            SimOpts::standard(),
        );
        let slow = sim::run_opts(
            &topology,
            fig3_workload(load, 11),
            &cfg,
            0.01,
            0.03,
            SimOpts::standard().reference(),
        );
        assert_outcomes_identical(&fast, &slow, &format!("full crossbar load {load}"));
    }
}

#[test]
fn fat_mesh_multi_hop_is_bit_identical_to_reference() {
    let topology = Topology::fat_mesh(2, 2, 2, 4);
    let wl = |seed| {
        WorkloadBuilder::new(16, VcPartition::from_mix(16, 80.0, 20.0))
            .load(0.5)
            .mix(80.0, 20.0)
            .real_time_class(StreamClass::Vbr)
            .seed(seed)
            .build()
    };
    let cfg = RouterConfig::default();
    let fast = sim::run_opts(&topology, wl(5), &cfg, 0.01, 0.03, SimOpts::standard());
    let slow = sim::run_opts(
        &topology,
        wl(5),
        &cfg,
        0.01,
        0.03,
        SimOpts::standard().reference(),
    );
    assert!(fast.delivered_msgs > 0);
    assert_outcomes_identical(&fast, &slow, "fat mesh");
}

#[test]
fn traces_are_bit_identical_to_reference() {
    let topology = Topology::single_switch(8);
    let cfg = RouterConfig::default();
    for &load in &[0.6, 0.96] {
        let (fast, fast_trace) = sim::run_opts_traced(
            &topology,
            fig3_workload(load, 42),
            &cfg,
            0.005,
            0.01,
            SimOpts::standard(),
        );
        let (slow, slow_trace) = sim::run_opts_traced(
            &topology,
            fig3_workload(load, 42),
            &cfg,
            0.005,
            0.01,
            SimOpts::standard().reference(),
        );
        assert!(!fast_trace.is_empty(), "traced run must produce events");
        assert_eq!(
            fast_trace, slow_trace,
            "load {load}: trace bytes must match"
        );
        assert_outcomes_identical(&fast, &slow, &format!("traced load {load}"));
    }
}

#[test]
fn audited_run_is_bit_identical_to_reference() {
    // The audit sweep recomputes the active sets from scratch every
    // interval (`ActiveSetDesync`), so an audited identity run doubles as
    // a continuous consistency check of the incremental state.
    let topology = Topology::single_switch(8);
    let cfg = RouterConfig::default();
    let fast = sim::run_opts(
        &topology,
        fig3_workload(0.9, 17),
        &cfg,
        0.01,
        0.03,
        SimOpts::audited(),
    );
    let slow = sim::run_opts(
        &topology,
        fig3_workload(0.9, 17),
        &cfg,
        0.01,
        0.03,
        SimOpts::audited().reference(),
    );
    assert_eq!(
        fast.audit_violations, 0,
        "optimized stepping must audit clean"
    );
    assert_outcomes_identical(&fast, &slow, "audited load 0.9");
}

/// A small multi-hop workload for the parallel-stepping grid: `nodes`
/// endpoints, 4 VCs split 2+2 (the torus dateline rule needs two VCs
/// per populated class), 80:20 VBR traffic mix.
fn grid_workload(nodes: usize, load: f64, seed: u64) -> Workload {
    grid_workload_policed(nodes, load, seed, PolicingMode::Off)
}

/// [`grid_workload`] with NI policing applied to the real-time streams.
fn grid_workload_policed(nodes: usize, load: f64, seed: u64, policing: PolicingMode) -> Workload {
    WorkloadBuilder::new(nodes, VcPartition::from_mix(4, 50.0, 50.0))
        .load(load)
        .mix(80.0, 20.0)
        .real_time_class(StreamClass::Vbr)
        .policing(policing)
        .seed(seed)
        .build()
}

/// The parallel-stepping identity grid: every thread count must produce
/// the same bits as the sequential active-set path on every topology —
/// the 8x8 mesh, the express-channel fat mesh, and the dateline torus.
/// Thread counts above the router count clamp (fat mesh has 4 routers,
/// so 8 threads exercises the clamp).
#[test]
fn parallel_grid_is_bit_identical_to_sequential() {
    let cases: [(&str, Topology, usize); 3] = [
        ("mesh 8x8", Topology::mesh(8, 8, 1), 64),
        ("fat mesh 2x2", Topology::fat_mesh(2, 2, 2, 4), 16),
        ("torus 4x4", Topology::torus(4, 4, 1), 16),
    ];
    for (name, topology, nodes) in &cases {
        let cfg = RouterConfig::new(4);
        let baseline = sim::run_opts(
            topology,
            grid_workload(*nodes, 0.4, 42),
            &cfg,
            0.0005,
            0.003,
            SimOpts::standard(),
        );
        assert!(baseline.delivered_msgs > 0, "{name}: traffic must flow");
        for &threads in &[2usize, 4, 8] {
            let par = sim::run_opts(
                topology,
                grid_workload(*nodes, 0.4, 42),
                &cfg,
                0.0005,
                0.003,
                SimOpts::standard().threads(threads),
            );
            assert_outcomes_identical(&par, &baseline, &format!("{name} threads {threads}"));
        }
    }
}

/// The full-scan reference oracle must agree with the parallel stepper
/// too: sequential, reference and 4-thread runs are one equivalence
/// class, not two pairwise contracts.
#[test]
fn parallel_mesh_matches_the_reference_oracle() {
    let topology = Topology::mesh(8, 8, 1);
    let cfg = RouterConfig::new(4);
    let reference = sim::run_opts(
        &topology,
        grid_workload(64, 0.4, 7),
        &cfg,
        0.0005,
        0.003,
        SimOpts::standard().reference(),
    );
    let par = sim::run_opts(
        &topology,
        grid_workload(64, 0.4, 7),
        &cfg,
        0.0005,
        0.003,
        SimOpts::standard().threads(4),
    );
    assert!(reference.delivered_msgs > 0, "traffic must flow");
    assert_outcomes_identical(&par, &reference, "mesh threads 4 vs reference");
}

/// Trace streams must match byte-for-byte: the parallel stepper's
/// deferred per-participant flush has to reproduce the sequential event
/// order exactly.
#[test]
fn parallel_traces_are_bit_identical_to_sequential() {
    let topology = Topology::mesh(8, 8, 1);
    let cfg = RouterConfig::new(4);
    let (seq, seq_trace) = sim::run_opts_traced(
        &topology,
        grid_workload(64, 0.4, 42),
        &cfg,
        0.0005,
        0.002,
        SimOpts::standard(),
    );
    for &threads in &[2usize, 4] {
        let (par, par_trace) = sim::run_opts_traced(
            &topology,
            grid_workload(64, 0.4, 42),
            &cfg,
            0.0005,
            0.002,
            SimOpts::standard().threads(threads),
        );
        assert!(!par_trace.is_empty(), "traced run must produce events");
        assert_eq!(
            par_trace, seq_trace,
            "threads {threads}: trace bytes must match"
        );
        assert_outcomes_identical(&par, &seq, &format!("traced threads {threads}"));
    }
}

/// The mailbox-conservation audit must stay clean under parallel
/// stepping on the dateline torus (wrap links, split flit/credit
/// ownership), and the audited outcome must still match sequential.
#[test]
fn parallel_torus_audits_clean() {
    let topology = Topology::torus(4, 4, 1);
    let cfg = RouterConfig::new(4);
    let seq = sim::run_opts(
        &topology,
        grid_workload(16, 0.4, 23),
        &cfg,
        0.0005,
        0.003,
        SimOpts::audited(),
    );
    let par = sim::run_opts(
        &topology,
        grid_workload(16, 0.4, 23),
        &cfg,
        0.0005,
        0.003,
        SimOpts::audited().threads(4),
    );
    assert_eq!(
        par.audit_violations, 0,
        "parallel stepping must audit clean"
    );
    assert!(par.delivered_msgs > 0, "torus traffic must flow");
    assert_outcomes_identical(&par, &seq, "audited torus threads 4");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Parallel identity holds across seeds and loads, not just the
    /// hand-picked points above.
    #[test]
    fn parallel_mesh_identity_over_seeds_and_loads(
        seed in 0u64..1000,
        load in 0.2f64..0.8,
        threads in 2usize..5,
    ) {
        let topology = Topology::mesh(4, 4, 1);
        let cfg = RouterConfig::new(4);
        let seq = sim::run_opts(
            &topology,
            grid_workload(16, load, seed),
            &cfg,
            0.0005,
            0.002,
            SimOpts::standard(),
        );
        let par = sim::run_opts(
            &topology,
            grid_workload(16, load, seed),
            &cfg,
            0.0005,
            0.002,
            SimOpts::standard().threads(threads),
        );
        prop_assert_eq!(par.injected_msgs, seq.injected_msgs);
        prop_assert_eq!(par.delivered_msgs, seq.delivered_msgs);
        prop_assert_eq!(par.in_flight_at_end, seq.in_flight_at_end);
        prop_assert_eq!(&par.counters, &seq.counters);
        prop_assert_eq!(par.jitter.mean_ms.to_bits(), seq.jitter.mean_ms.to_bits());
        prop_assert_eq!(
            par.be_mean_latency_us.to_bits(),
            seq.be_mean_latency_us.to_bits()
        );
    }
}

/// The deadlock-prone 1-VC clockwise ring with a stall watchdog armed.
fn deadlock_ring() -> Network {
    let topology = Topology::ring(3, 1);
    let spec = WorkloadSpec {
        msg_flits: 64,
        ..WorkloadSpec::paper_default()
    };
    let wl = WorkloadBuilder::new(3, VcPartition::all_real_time(1))
        .spec(spec)
        .load(0.9)
        .mix(100.0, 0.0)
        .real_time_class(StreamClass::Cbr)
        .seed(16)
        .build();
    let cfg = RouterConfig::new(1).buf_flits(4);
    let mut net = Network::new(&topology, wl, &cfg);
    net.enable_watchdog(WatchdogConfig {
        stall_cycles: 5_000,
    });
    net
}

#[test]
fn ring_deadlock_classification_is_identical_to_reference() {
    // The deadlock-prone 1-VC clockwise ring: both stepping modes must
    // stall at the same cycle with byte-equal stall reports (same holders,
    // same waits-for edges, same cycle membership).
    let mut fast = deadlock_ring();
    let mut slow = deadlock_ring();
    let end = fast.timebase().cycles_from_ms(500.0);
    fast.run_until(end);
    slow.run_until_reference(end);
    let fast_stall = fast.stall_report().expect("ring must deadlock");
    let slow_stall = slow.stall_report().expect("reference ring must deadlock");
    assert_eq!(fast_stall, slow_stall, "stall reports must be identical");
    assert_eq!(fast.now(), slow.now(), "both stop at the detection cycle");
    assert_eq!(fast.injected_msgs(), slow.injected_msgs());
    assert_eq!(fast.delivered_flits(), slow.delivered_flits());
    assert_eq!(fast.flits_in_flight(), slow.flits_in_flight());
    assert_eq!(fast.counters(), slow.counters());
}

/// Steps `net` to `to` on the path `threads` selects (1 = sequential
/// active-set, >1 = parallel), recording trace events into `sink`.
fn step_traced(net: &mut Network, to: Cycles, threads: usize, sink: &mut JsonlSink) {
    if threads > 1 {
        net.run_until_parallel_with(to, threads, sink);
    } else {
        net.run_until_with(to, sink);
    }
}

/// Untraced [`step_traced`].
fn step_plain(net: &mut Network, to: Cycles, threads: usize) {
    if threads > 1 {
        net.run_until_parallel(to, threads);
    } else {
        net.run_until(to);
    }
}

/// The checkpoint/restore identity grid: on every topology and stepping
/// path, a run snapshotted at `mid`, restored into a freshly built
/// network and stepped to `end` must be bit-identical — counters, metric
/// accumulators, the stitched trace bytes, and the end-of-run snapshot
/// image itself — to the uninterrupted run.
#[test]
fn checkpoint_restore_grid_is_bit_identical() {
    let cases: [(&str, Topology, usize); 3] = [
        ("mesh 8x8", Topology::mesh(8, 8, 1), 64),
        ("fat mesh 2x2", Topology::fat_mesh(2, 2, 2, 4), 16),
        ("torus 4x4", Topology::torus(4, 4, 1), 16),
    ];
    for (name, topology, nodes) in &cases {
        let cfg = RouterConfig::new(4);
        for &threads in &[1usize, 2, 4] {
            let what = format!("{name} threads {threads}");

            let mut full = Network::new(topology, grid_workload(*nodes, 0.4, 42), &cfg);
            let tb = full.timebase();
            let warmup = tb.cycles_from_secs(0.0005);
            let mid = tb.cycles_from_secs(0.0015);
            let end = tb.cycles_from_secs(0.0035);
            full.set_warmup_end(warmup);
            let mut full_sink = JsonlSink::new();
            step_traced(&mut full, end, threads, &mut full_sink);
            assert!(full.delivered_msgs() > 0, "{what}: traffic must flow");

            let mut pre = Network::new(topology, grid_workload(*nodes, 0.4, 42), &cfg);
            pre.set_warmup_end(warmup);
            let mut pre_sink = JsonlSink::new();
            step_traced(&mut pre, mid, threads, &mut pre_sink);
            let bytes = pre.snapshot();

            let mut post = Network::new(topology, grid_workload(*nodes, 0.4, 42), &cfg);
            post.restore(&bytes).expect("restore");
            let mut post_sink = JsonlSink::new();
            step_traced(&mut post, end, threads, &mut post_sink);

            assert_eq!(
                full.injected_msgs(),
                post.injected_msgs(),
                "{what}: injected"
            );
            assert_eq!(
                full.delivered_flits(),
                post.delivered_flits(),
                "{what}: delivered flits"
            );
            assert_eq!(full.counters(), post.counters(), "{what}: counters");
            let mut stitched = pre_sink.into_bytes();
            stitched.extend_from_slice(&post_sink.into_bytes());
            assert!(
                stitched == full_sink.into_bytes(),
                "{what}: stitched pre+post trace differs from the uninterrupted trace"
            );
            assert!(
                full.snapshot() == post.snapshot(),
                "{what}: end-of-run snapshots differ"
            );
        }
    }
}

/// A checkpoint taken before the watchdog trips must reproduce the same
/// deadlock at the same cycle with a byte-equal stall report after
/// restore — the waits-for analysis runs on reconstructed state.
#[test]
fn ring_deadlock_stall_report_survives_checkpoint() {
    let mut full = deadlock_ring();
    let end = full.timebase().cycles_from_ms(500.0);
    full.run_until(end);
    let full_stall = full.stall_report().expect("ring must deadlock").clone();

    let mut pre = deadlock_ring();
    let mid = pre.timebase().cycles_from_ms(1.0);
    pre.run_until(mid);
    assert!(
        pre.stall_report().is_none(),
        "checkpoint must precede the stall"
    );
    let bytes = pre.snapshot();

    let mut post = deadlock_ring();
    post.restore(&bytes).expect("restore");
    post.run_until(end);
    let post_stall = post.stall_report().expect("restored ring must deadlock");
    assert_eq!(&full_stall, post_stall, "stall reports must be identical");
    assert_eq!(full.now(), post.now(), "both stop at the detection cycle");
    assert_eq!(full.injected_msgs(), post.injected_msgs());
    assert_eq!(full.flits_in_flight(), post.flits_in_flight());
    assert_eq!(full.counters(), post.counters());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Snapshot round-trip identity holds at random seeds, loads,
    /// checkpoint cycles, thread counts, topologies, scheduler
    /// disciplines and policing modes — not just the hand-picked grids
    /// above.
    #[test]
    fn snapshot_round_trip_over_random_runs(
        seed in 0u64..1000,
        load in 0.2f64..0.8,
        frac in 0.1f64..0.9,
        threads in 1usize..5,
        topo_idx in 0usize..3,
        kind_idx in 0usize..6,
        pol_idx in 0usize..3,
    ) {
        let topology = match topo_idx {
            0 => Topology::mesh(4, 4, 1),
            1 => Topology::fat_mesh(2, 2, 2, 4),
            _ => Topology::torus(4, 4, 1),
        };
        let mode = PolicingMode::ALL[pol_idx];
        let wl = |s| grid_workload_policed(16, load, s, mode);
        let cfg = RouterConfig::new(4).scheduler(ZOO[kind_idx]);
        let mut a = Network::new(&topology, wl(seed), &cfg);
        let tb = a.timebase();
        let end = tb.cycles_from_secs(0.0025);
        a.set_warmup_end(tb.cycles_from_secs(0.0005));
        let mid = Cycles((end.get() as f64 * frac) as u64);
        step_plain(&mut a, mid, threads);
        let bytes = a.snapshot();

        let mut b = Network::new(&topology, wl(seed), &cfg);
        b.restore(&bytes).expect("restore");
        step_plain(&mut a, end, threads);
        step_plain(&mut b, end, threads);
        prop_assert_eq!(a.injected_msgs(), b.injected_msgs());
        prop_assert_eq!(a.delivered_flits(), b.delivered_flits());
        prop_assert_eq!(&a.counters(), &b.counters());
        prop_assert!(a.snapshot() == b.snapshot(), "end snapshots differ");
    }
}

#[test]
fn ring_deadlock_classification_is_identical_under_parallel_stepping() {
    // The parallel stepper must detect the same deadlock at the same
    // cycle with a byte-equal stall report (the 3-router ring clamps the
    // pool to 3, so 2 threads is the interesting split).
    let mut par = deadlock_ring();
    let mut seq = deadlock_ring();
    let end = par.timebase().cycles_from_ms(500.0);
    par.run_until_parallel(end, 2);
    seq.run_until(end);
    let par_stall = par.stall_report().expect("parallel ring must deadlock");
    let seq_stall = seq.stall_report().expect("sequential ring must deadlock");
    assert_eq!(par_stall, seq_stall, "stall reports must be identical");
    assert_eq!(par.now(), seq.now(), "both stop at the detection cycle");
    assert_eq!(par.injected_msgs(), seq.injected_msgs());
    assert_eq!(par.delivered_flits(), seq.delivered_flits());
    assert_eq!(par.flits_in_flight(), seq.flits_in_flight());
    assert_eq!(par.counters(), seq.counters());
}

// ---------------------------------------------------------------------------
// Quiescence-horizon time skipping.
//
// `Network::run_until` jumps the clock over any span in which no component
// can act — every router pipeline empty and every backlogged NI credit-
// blocked — not just when the network is fully drained. The skipped cycles
// must be *provably* no-ops: every observable (counters, traces, stall
// reports, snapshots) has to match `run_until_exhaustive`, which steps
// every single cycle with skipping disabled and acts as the oracle here.
// These grids use bare networks (no audit or watchdog) so end snapshots
// can be compared byte-for-byte.

/// Every observable of two bare networks stepped to the same cycle must
/// match, including the snapshot bytes (which cover RNG streams, link
/// rings, scheduler state and metric accumulators).
fn assert_networks_identical(fast: &Network, slow: &Network, what: &str) {
    assert_eq!(fast.now(), slow.now(), "{what}: clock");
    assert_eq!(
        fast.injected_msgs(),
        slow.injected_msgs(),
        "{what}: injected"
    );
    assert_eq!(
        fast.delivered_msgs(),
        slow.delivered_msgs(),
        "{what}: delivered msgs"
    );
    assert_eq!(
        fast.delivered_flits(),
        slow.delivered_flits(),
        "{what}: delivered flits"
    );
    assert_eq!(
        fast.flits_in_flight(),
        slow.flits_in_flight(),
        "{what}: flits in flight"
    );
    assert_eq!(fast.counters(), slow.counters(), "{what}: counters");
    assert!(
        fast.snapshot() == slow.snapshot(),
        "{what}: snapshots differ"
    );
}

/// The horizon driver vs. the exhaustive oracle over the fig. 3 switch at
/// a low-, mid- and saturation-load point, under every policing mode. At
/// the low-load and shaped points the driver must actually skip cycles —
/// otherwise this test is vacuous.
#[test]
fn horizon_skipping_matches_exhaustive_on_fig3_grid() {
    let topology = Topology::single_switch(8);
    let cfg = RouterConfig::default();
    for &load in &[0.3, 0.6, 0.96] {
        for mode in PolicingMode::ALL {
            let what = format!("fig3 load {load} policing {mode:?}");
            let mut jumped = Network::new(&topology, fig3_policed(load, 42, mode), &cfg);
            let mut naive = Network::new(&topology, fig3_policed(load, 42, mode), &cfg);
            let end = jumped.timebase().cycles_from_secs(0.003);
            jumped.run_until(end);
            naive.run_until_exhaustive(end);
            assert!(jumped.delivered_msgs() > 0, "{what}: traffic must flow");
            assert_networks_identical(&jumped, &naive, &what);
            let skip = jumped.skip_stats();
            assert_eq!(
                skip.simulated_cycles(),
                end.get(),
                "{what}: stepped + skipped must cover the whole run"
            );
            if load <= 0.3 || mode == PolicingMode::Shape {
                assert!(
                    skip.cycles_skipped > 0,
                    "{what}: a skippable point must skip cycles"
                );
                assert!(skip.horizon_jumps > 0, "{what}: jumps must be counted");
            }
        }
    }
}

/// One equivalence class across all four drivers — horizon-skipping
/// active, exhaustive, full-scan reference and the 4-thread parallel
/// stepper — over multi-hop topologies and every policing mode. The
/// reference and parallel drivers share the horizon engine, so this also
/// pins that jumping composes with full scans and barrier phases.
#[test]
fn horizon_identity_grid_over_topologies_and_drivers() {
    let cases: [(&str, Topology, usize); 3] = [
        ("mesh 4x4", Topology::mesh(4, 4, 1), 16),
        ("fat mesh 2x2", Topology::fat_mesh(2, 2, 2, 4), 16),
        ("torus 4x4", Topology::torus(4, 4, 1), 16),
    ];
    for (name, topology, nodes) in &cases {
        let cfg = RouterConfig::new(4);
        for mode in PolicingMode::ALL {
            let what = format!("{name} policing {mode:?}");
            let build =
                || Network::new(topology, grid_workload_policed(*nodes, 0.3, 9, mode), &cfg);
            let mut jumped = build();
            let end = jumped.timebase().cycles_from_secs(0.002);
            jumped.run_until(end);
            assert!(jumped.delivered_msgs() > 0, "{what}: traffic must flow");

            let mut naive = build();
            naive.run_until_exhaustive(end);
            assert_networks_identical(&jumped, &naive, &format!("{what} vs exhaustive"));

            let mut reference = build();
            reference.run_until_reference(end);
            assert_networks_identical(&jumped, &reference, &format!("{what} vs reference"));

            let mut par = build();
            par.run_until_parallel(end, 4);
            assert_networks_identical(&jumped, &par, &format!("{what} vs 4 threads"));
            assert_eq!(
                jumped.skip_stats(),
                par.skip_stats(),
                "{what}: sequential and parallel drivers must take the same jumps"
            );
        }
    }
}

/// Skipped spans must record no telemetry: the exhaustive oracle steps
/// through every idle cycle, so if idle cycles ever sampled occupancy the
/// oracle would accumulate samples the jumping driver skips over. Equal
/// sample counts alongside a nonzero skip count prove skipped (and idle-
/// stepped) cycles contribute nothing.
#[test]
fn horizon_skipped_spans_record_no_occupancy_samples() {
    let topology = Topology::single_switch(8);
    let cfg = RouterConfig::default();
    let mut jumped = Network::new(&topology, fig3_policed(0.3, 11, PolicingMode::Shape), &cfg);
    let mut naive = Network::new(&topology, fig3_policed(0.3, 11, PolicingMode::Shape), &cfg);
    let end = jumped.timebase().cycles_from_secs(0.003);
    jumped.run_until(end);
    naive.run_until_exhaustive(end);
    let skipped = jumped.skip_stats().cycles_skipped;
    assert!(skipped > 0, "shaped low-load point must skip cycles");
    let fast = jumped.counters();
    let slow = naive.counters();
    assert!(fast.occupancy_samples > 0, "busy cycles must still sample");
    assert_eq!(
        fast.occupancy_samples, slow.occupancy_samples,
        "skipped spans must not change the occupancy sample count"
    );
    assert_eq!(
        fast.occupancy_flits, slow.occupancy_flits,
        "skipped spans must not change the sampled occupancy sum"
    );
}

/// A checkpoint taken *inside* a skipped span must behave exactly like
/// one taken on a stepped cycle: the restored network re-snapshots to the
/// same bytes, and resuming both the original and the restored copy lands
/// them in identical end states. The interrupt cycle is asserted idle so
/// the test really does land mid-jump rather than on a busy cycle.
#[test]
fn snapshot_mid_jump_round_trips_bit_identically() {
    let topology = Topology::single_switch(8);
    let cfg = RouterConfig::default();
    let wl = |s| fig3_policed(0.3, s, PolicingMode::Shape);
    let mut a = Network::new(&topology, wl(5), &cfg);
    let tb = a.timebase();
    let end = tb.cycles_from_secs(0.003);
    // An odd interrupt cycle partway through the run: at 30% shaped load
    // most cycles sit inside inter-message gaps the driver jumps over.
    let mid = Cycles(tb.cycles_from_secs(0.00137).get() | 1);
    a.run_until(mid);
    assert_eq!(a.now(), mid, "jump must clamp exactly at the target");
    assert_eq!(
        a.flits_in_flight(),
        0,
        "interrupt cycle must fall in an idle span (inside a jump)"
    );
    assert!(
        a.skip_stats().cycles_skipped > 0,
        "the run up to the checkpoint must have skipped cycles"
    );

    let bytes = a.snapshot();
    let mut b = Network::new(&topology, wl(5), &cfg);
    b.restore(&bytes).expect("restore");
    assert!(
        b.snapshot() == bytes,
        "restored network must re-snapshot to the same bytes"
    );

    a.run_until(end);
    b.run_until(end);
    assert_networks_identical(&a, &b, "resumed original vs restored");

    // And the interrupted run must match an uninterrupted one.
    let mut c = Network::new(&topology, wl(5), &cfg);
    c.run_until(end);
    assert_networks_identical(&a, &c, "interrupted vs uninterrupted");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Horizon-vs-exhaustive identity holds at random seeds, loads,
    /// scheduler disciplines, policing modes and topologies — not just
    /// the hand-picked grids above.
    #[test]
    fn horizon_identity_over_random_runs(
        seed in 0u64..1000,
        load in 0.1f64..0.8,
        topo_idx in 0usize..3,
        kind_idx in 0usize..6,
        pol_idx in 0usize..3,
    ) {
        let topology = match topo_idx {
            0 => Topology::mesh(4, 4, 1),
            1 => Topology::fat_mesh(2, 2, 2, 4),
            _ => Topology::torus(4, 4, 1),
        };
        let mode = PolicingMode::ALL[pol_idx];
        let cfg = RouterConfig::new(4).scheduler(ZOO[kind_idx]);
        let wl = |s| grid_workload_policed(16, load, s, mode);
        let mut jumped = Network::new(&topology, wl(seed), &cfg);
        let mut naive = Network::new(&topology, wl(seed), &cfg);
        let end = jumped.timebase().cycles_from_secs(0.002);
        jumped.run_until(end);
        naive.run_until_exhaustive(end);
        prop_assert_eq!(jumped.now(), naive.now());
        prop_assert_eq!(jumped.injected_msgs(), naive.injected_msgs());
        prop_assert_eq!(jumped.delivered_flits(), naive.delivered_flits());
        prop_assert_eq!(&jumped.counters(), &naive.counters());
        prop_assert!(jumped.snapshot() == naive.snapshot(), "snapshots differ");
        // Stepped + skipped must cover the whole run.
        prop_assert_eq!(jumped.skip_stats().simulated_cycles(), end.get());
    }
}

/// The deadlock watchdog must fire at the same cycle with a byte-equal
/// stall report whether or not the driver jumps: the watchdog deadline
/// (`last_progress_at + stall_cycles`) is a horizon term, so a quiescent
///-but-deadlocked ring gets its check cycle stepped, not skipped.
#[test]
fn horizon_skipping_preserves_deadlock_detection() {
    let mut jumped = deadlock_ring();
    let mut naive = deadlock_ring();
    naive.set_horizon_skipping(false);
    let end = jumped.timebase().cycles_from_ms(500.0);
    jumped.run_until(end);
    naive.run_until(end);
    let fast = jumped.stall_report().expect("jumping ring must deadlock");
    let slow = naive.stall_report().expect("legacy ring must deadlock");
    assert_eq!(fast, slow, "stall reports must be identical");
    assert_eq!(
        jumped.now(),
        naive.now(),
        "both stop at the detection cycle"
    );
    assert_eq!(jumped.counters(), naive.counters());
}
