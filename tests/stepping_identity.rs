//! Occupancy-driven stepping vs. the full-scan reference.
//!
//! The active-set stepping mode (`Network::run_until`) must be *bit-
//! identical* to the full-scan reference (`Network::run_until_reference`):
//! the active lists are iterated in the exact order the full scans visit
//! the same slots, so every arbitration, every counter increment, every
//! float accumulation and every trace byte must match. These tests pin
//! that contract over the fig. 3 operating range, multi-hop topologies,
//! both crossbar kinds, and the deadlock-prone ring (the stall report and
//! its waits-for graph must classify identically).

use flitnet::VcPartition;
use mediaworm::{
    sim, CrossbarKind, Network, RouterConfig, SchedulerKind, SimOpts, SimOutcome, WatchdogConfig,
};
use topo::Topology;
use traffic::{StreamClass, Workload, WorkloadBuilder, WorkloadSpec};

/// The fig. 3 load grid (fractions of link bandwidth).
const LOADS: [f64; 5] = [0.6, 0.7, 0.8, 0.9, 0.96];

fn fig3_workload(load: f64, seed: u64) -> Workload {
    WorkloadBuilder::new(8, VcPartition::from_mix(16, 80.0, 20.0))
        .load(load)
        .mix(80.0, 20.0)
        .real_time_class(StreamClass::Vbr)
        .seed(seed)
        .build()
}

/// Every observable of the two outcomes must match, floats bit-for-bit.
fn assert_outcomes_identical(fast: &SimOutcome, slow: &SimOutcome, what: &str) {
    assert_eq!(fast.injected_msgs, slow.injected_msgs, "{what}: injected");
    assert_eq!(
        fast.delivered_msgs, slow.delivered_msgs,
        "{what}: delivered"
    );
    assert_eq!(fast.counters, slow.counters, "{what}: telemetry counters");
    assert_eq!(fast.stall, slow.stall, "{what}: stall classification");
    assert_eq!(
        fast.audit_violations, slow.audit_violations,
        "{what}: audit violations"
    );
    assert_eq!(
        fast.jitter.mean_ms.to_bits(),
        slow.jitter.mean_ms.to_bits(),
        "{what}: jitter mean"
    );
    assert_eq!(
        fast.jitter.std_ms.to_bits(),
        slow.jitter.std_ms.to_bits(),
        "{what}: jitter std"
    );
    assert_eq!(
        fast.jitter.p99_ms.to_bits(),
        slow.jitter.p99_ms.to_bits(),
        "{what}: jitter p99"
    );
    assert_eq!(
        fast.be_mean_latency_us.to_bits(),
        slow.be_mean_latency_us.to_bits(),
        "{what}: best-effort latency"
    );
    assert_eq!(fast.be_msgs, slow.be_msgs, "{what}: best-effort count");
}

#[test]
fn fig3_load_grid_is_bit_identical_to_reference() {
    let topology = Topology::single_switch(8);
    for kind in [SchedulerKind::VirtualClock, SchedulerKind::Fifo] {
        for &load in &LOADS {
            let cfg = RouterConfig::default().scheduler(kind);
            let fast = sim::run_opts(
                &topology,
                fig3_workload(load, 42),
                &cfg,
                0.01,
                0.03,
                SimOpts::standard(),
            );
            let slow = sim::run_opts(
                &topology,
                fig3_workload(load, 42),
                &cfg,
                0.01,
                0.03,
                SimOpts::standard().reference(),
            );
            assert!(fast.delivered_msgs > 0, "{kind:?} load {load} must flow");
            assert_outcomes_identical(&fast, &slow, &format!("{kind:?} load {load}"));
        }
    }
}

#[test]
fn full_crossbar_is_bit_identical_to_reference() {
    let topology = Topology::single_switch(8);
    let cfg = RouterConfig::default().crossbar(CrossbarKind::Full);
    for &load in &[0.7, 0.96] {
        let fast = sim::run_opts(
            &topology,
            fig3_workload(load, 11),
            &cfg,
            0.01,
            0.03,
            SimOpts::standard(),
        );
        let slow = sim::run_opts(
            &topology,
            fig3_workload(load, 11),
            &cfg,
            0.01,
            0.03,
            SimOpts::standard().reference(),
        );
        assert_outcomes_identical(&fast, &slow, &format!("full crossbar load {load}"));
    }
}

#[test]
fn fat_mesh_multi_hop_is_bit_identical_to_reference() {
    let topology = Topology::fat_mesh(2, 2, 2, 4);
    let wl = |seed| {
        WorkloadBuilder::new(16, VcPartition::from_mix(16, 80.0, 20.0))
            .load(0.5)
            .mix(80.0, 20.0)
            .real_time_class(StreamClass::Vbr)
            .seed(seed)
            .build()
    };
    let cfg = RouterConfig::default();
    let fast = sim::run_opts(&topology, wl(5), &cfg, 0.01, 0.03, SimOpts::standard());
    let slow = sim::run_opts(
        &topology,
        wl(5),
        &cfg,
        0.01,
        0.03,
        SimOpts::standard().reference(),
    );
    assert!(fast.delivered_msgs > 0);
    assert_outcomes_identical(&fast, &slow, "fat mesh");
}

#[test]
fn traces_are_bit_identical_to_reference() {
    let topology = Topology::single_switch(8);
    let cfg = RouterConfig::default();
    for &load in &[0.6, 0.96] {
        let (fast, fast_trace) = sim::run_opts_traced(
            &topology,
            fig3_workload(load, 42),
            &cfg,
            0.005,
            0.01,
            SimOpts::standard(),
        );
        let (slow, slow_trace) = sim::run_opts_traced(
            &topology,
            fig3_workload(load, 42),
            &cfg,
            0.005,
            0.01,
            SimOpts::standard().reference(),
        );
        assert!(!fast_trace.is_empty(), "traced run must produce events");
        assert_eq!(
            fast_trace, slow_trace,
            "load {load}: trace bytes must match"
        );
        assert_outcomes_identical(&fast, &slow, &format!("traced load {load}"));
    }
}

#[test]
fn audited_run_is_bit_identical_to_reference() {
    // The audit sweep recomputes the active sets from scratch every
    // interval (`ActiveSetDesync`), so an audited identity run doubles as
    // a continuous consistency check of the incremental state.
    let topology = Topology::single_switch(8);
    let cfg = RouterConfig::default();
    let fast = sim::run_opts(
        &topology,
        fig3_workload(0.9, 17),
        &cfg,
        0.01,
        0.03,
        SimOpts::audited(),
    );
    let slow = sim::run_opts(
        &topology,
        fig3_workload(0.9, 17),
        &cfg,
        0.01,
        0.03,
        SimOpts::audited().reference(),
    );
    assert_eq!(
        fast.audit_violations, 0,
        "optimized stepping must audit clean"
    );
    assert_outcomes_identical(&fast, &slow, "audited load 0.9");
}

#[test]
fn ring_deadlock_classification_is_identical_to_reference() {
    // The deadlock-prone 1-VC clockwise ring: both stepping modes must
    // stall at the same cycle with byte-equal stall reports (same holders,
    // same waits-for edges, same cycle membership).
    let build = || {
        let topology = Topology::ring(3, 1);
        let spec = WorkloadSpec {
            msg_flits: 64,
            ..WorkloadSpec::paper_default()
        };
        let wl = WorkloadBuilder::new(3, VcPartition::all_real_time(1))
            .spec(spec)
            .load(0.9)
            .mix(100.0, 0.0)
            .real_time_class(StreamClass::Cbr)
            .seed(16)
            .build();
        let cfg = RouterConfig::new(1).buf_flits(4);
        let mut net = Network::new(&topology, wl, &cfg);
        net.enable_watchdog(WatchdogConfig {
            stall_cycles: 5_000,
        });
        net
    };
    let mut fast = build();
    let mut slow = build();
    let end = fast.timebase().cycles_from_ms(500.0);
    fast.run_until(end);
    slow.run_until_reference(end);
    let fast_stall = fast.stall_report().expect("ring must deadlock");
    let slow_stall = slow.stall_report().expect("reference ring must deadlock");
    assert_eq!(fast_stall, slow_stall, "stall reports must be identical");
    assert_eq!(fast.now(), slow.now(), "both stop at the detection cycle");
    assert_eq!(fast.injected_msgs(), slow.injected_msgs());
    assert_eq!(fast.delivered_flits(), slow.delivered_flits());
    assert_eq!(fast.flits_in_flight(), slow.flits_in_flight());
    assert_eq!(fast.counters(), slow.counters());
}
