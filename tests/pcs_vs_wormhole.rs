//! Integration tests comparing MediaWorm with the PCS baseline
//! (paper §5.6, Fig. 8, Table 3).

use flitnet::VcPartition;
use mediaworm::{sim, RouterConfig};
use pcs_router::PcsConfig;
use topo::Topology;
use traffic::{StreamClass, WorkloadBuilder, WorkloadSpec};

fn worm_100mbps(load: f64, seed: u64) -> mediaworm::SimOutcome {
    let wl = WorkloadBuilder::new(8, VcPartition::all_real_time(24))
        .spec(WorkloadSpec::paper_100mbps())
        .load(load)
        .mix(100.0, 0.0)
        .real_time_class(StreamClass::Vbr)
        .seed(seed)
        .build();
    sim::run(
        &Topology::single_switch(8),
        wl,
        &RouterConfig::new(24),
        0.05,
        0.25,
    )
}

fn pcs(load: f64, seed: u64) -> pcs_router::PcsOutcome {
    pcs_router::sim::run(load, &PcsConfig::paper_default(), 0.05, 0.25, seed)
}

#[test]
fn both_jitter_free_at_realistic_load() {
    // Fig. 8 / §5.6: "for most realistic operating conditions (an input
    // load of 0.7 is reasonably high), wormhole switching can deliver as
    // good performance as PCS". 0.7 is exactly the wormhole router's
    // jitter-free boundary on the 100 Mbps link, so test just inside it.
    let worm = worm_100mbps(0.64, 1);
    let circuit = pcs(0.64, 1);
    assert!(
        worm.is_jitter_free(33.0, 1.0),
        "worm σ={}",
        worm.jitter.std_ms
    );
    assert!(
        circuit.jitter.is_jitter_free(33.0, 1.0),
        "pcs σ={}",
        circuit.jitter.std_ms
    );
}

#[test]
fn pcs_keeps_its_edge_at_high_load() {
    // Beyond ~0.8 the wormhole router jitters while PCS's reserved
    // circuits stay clean — the paper's crossover.
    let worm = worm_100mbps(0.9, 2);
    let circuit = pcs(0.9, 2);
    assert!(
        circuit.jitter.std_ms < worm.jitter.std_ms,
        "pcs σ={} should beat worm σ={}",
        circuit.jitter.std_ms,
        worm.jitter.std_ms
    );
}

#[test]
fn pcs_pays_with_dropped_connections_wormhole_does_not() {
    // The paper's §5.6 punchline: PCS's QoS comes at the cost of turning
    // down a large share of connection requests; wormhole stream
    // establishment "does not actually fail".
    let circuit = pcs(0.7, 3);
    assert!(
        circuit.dropped > circuit.established / 2,
        "PCS at 0.7 should nack many probes: dropped {} established {}",
        circuit.dropped,
        circuit.established
    );
    // All wormhole streams are always accepted by construction: the
    // workload builder creates exactly the offered stream count.
    let wl = WorkloadBuilder::new(8, VcPartition::all_real_time(24))
        .spec(WorkloadSpec::paper_100mbps())
        .load(0.7)
        .mix(100.0, 0.0)
        .seed(3)
        .build();
    assert_eq!(wl.real_time_stream_count(), 8 * 18); // 0.7 × 25 ≈ 18/node
}

#[test]
fn pcs_establishment_is_vc_capacity_bound() {
    let cfg = PcsConfig::paper_default();
    let out = pcs(0.91, 4);
    // Per destination link at most 24 circuits can terminate.
    assert!(out.established <= 8 * u64::from(cfg.vcs_per_link));
    // And the drop counter accounts exactly.
    assert_eq!(out.attempts, out.established + out.dropped);
}

#[test]
fn drops_grow_with_load() {
    let lo = pcs(0.42, 5);
    let hi = pcs(0.91, 5);
    let lo_ratio = lo.dropped as f64 / lo.attempts as f64;
    let hi_ratio = hi.dropped as f64 / hi.attempts as f64;
    assert!(
        hi_ratio > lo_ratio,
        "drop ratio must grow with load: {lo_ratio:.2} → {hi_ratio:.2}"
    );
}
