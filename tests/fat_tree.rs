//! Integration tests for the fat-tree topology (the second "fat"
//! topology the paper names in §3.4).

use flitnet::VcPartition;
use mediaworm::{sim, RouterConfig};
use topo::Topology;
use traffic::{StreamClass, WorkloadBuilder};

fn run(topology: &Topology, load: f64, seed: u64) -> mediaworm::SimOutcome {
    let wl = WorkloadBuilder::new(topology.node_count(), VcPartition::all_real_time(16))
        .load(load)
        .mix(100.0, 0.0)
        .real_time_class(StreamClass::Vbr)
        .seed(seed)
        .build();
    sim::run(topology, wl, &RouterConfig::default(), 0.05, 0.15)
}

#[test]
fn fat_tree_delivers_jitter_free_at_light_load() {
    // 4 leaves × 2 roots × 2 endpoints per leaf.
    let t = Topology::fat_tree(4, 2, 2);
    let out = run(&t, 0.3, 1);
    assert!(
        out.is_jitter_free(33.0, 1.0),
        "d={} σ={}",
        out.jitter.mean_ms,
        out.jitter.std_ms
    );
}

#[test]
fn more_roots_tolerate_more_load() {
    // With 4 endpoints per leaf and only one root, the single up-link of
    // each leaf carries up to 4 nodes' worth of cross-leaf traffic; two
    // roots double that headroom. Compare jitter at a load the thin
    // configuration cannot sustain.
    let thin = run(&Topology::fat_tree(4, 1, 4), 0.5, 2);
    let fat = run(&Topology::fat_tree(4, 4, 4), 0.5, 2);
    assert!(
        fat.jitter.std_ms <= thin.jitter.std_ms + 0.05,
        "fat σ={} thin σ={}",
        fat.jitter.std_ms,
        thin.jitter.std_ms
    );
    assert!(
        thin.jitter.std_ms > 1.0,
        "single-root tree should be saturated here: σ={}",
        thin.jitter.std_ms
    );
    assert!(
        fat.is_jitter_free(33.0, 1.0),
        "four roots should carry the load: d={} σ={}",
        fat.jitter.mean_ms,
        fat.jitter.std_ms
    );
}

#[test]
fn leaf_local_traffic_never_uses_roots() {
    let t = Topology::fat_tree(2, 2, 4);
    // All nodes 0..4 share leaf 0; their pairwise routes terminate at the
    // leaf (0 hops).
    for a in 0..4u32 {
        for b in 0..4u32 {
            if a != b {
                assert_eq!(t.hops(flitnet::NodeId(a), flitnet::NodeId(b)), 0);
            }
        }
    }
    // Cross-leaf traffic takes exactly two hops (up, down).
    assert_eq!(t.hops(flitnet::NodeId(0), flitnet::NodeId(5)), 2);
}
