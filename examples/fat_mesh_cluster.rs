//! Fat links versus thin links: why cluster interconnects use "fat"
//! topologies (paper §3.4, §5.7).
//!
//! A mesh with several endpoints per switch concentrates traffic on the
//! inter-switch links. This example runs the same mixed workload over a
//! thin 2×2 mesh (one link per neighbour pair) and the paper's fat 2×2
//! mesh (two parallel links), showing how the fat pipes restore the
//! bandwidth balance.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fat_mesh_cluster
//! ```

use flitnet::VcPartition;
use mediaworm::{sim, RouterConfig};
use topo::Topology;
use traffic::{StreamClass, WorkloadBuilder};

fn run(topology: &Topology, load: f64) -> (f64, f64, f64) {
    let partition = VcPartition::from_mix(16, 60.0, 40.0);
    let workload = WorkloadBuilder::new(topology.node_count(), partition)
        .load(load)
        .mix(60.0, 40.0)
        .real_time_class(StreamClass::Vbr)
        .seed(5)
        .build();
    let out = sim::run(topology, workload, &RouterConfig::default(), 0.05, 0.15);
    (
        out.jitter.mean_ms,
        out.jitter.std_ms,
        out.be_mean_latency_us,
    )
}

fn main() {
    // Thin: 4 endpoints per switch but only ONE link per neighbour pair.
    let thin = Topology::mesh(2, 2, 4);
    // Fat: the paper's topology — two parallel links per neighbour pair.
    let fat = Topology::fat_mesh(2, 2, 2, 4);

    println!("60:40 VBR:best-effort mix on a 2x2 mesh, 4 endpoints per switch\n");
    println!(
        "{:>6}  {:>26}  {:>26}",
        "load", "thin mesh (d̄/σ_d ms, BE µs)", "fat mesh (d̄/σ_d ms, BE µs)"
    );
    for &load in &[0.3, 0.5, 0.7] {
        let (td, ts, tb) = run(&thin, load);
        let (fd, fs, fb) = run(&fat, load);
        println!("{load:>6.2}  {td:>8.2} {ts:>6.2} {tb:>9.1}  {fd:>8.2} {fs:>6.2} {fb:>9.1}");
    }
    println!();
    println!("the thin mesh's shared inter-switch links saturate first; the fat");
    println!("pipes keep the real-time class jitter-free at loads where the thin");
    println!("topology has already collapsed.");
}
