//! Admission control in action (the paper's §6 future-work direction).
//!
//! The experiments identify a jitter-free operating region of roughly
//! 70–80 % link load. An [`mediaworm::AdmissionController`] turns that
//! into policy: it tracks reserved real-time bandwidth per link and
//! rejects streams that would push any link of their route past the
//! threshold. This example offers a burst of streams to a fat-mesh,
//! shows what gets admitted, and then *verifies by simulation* that the
//! admitted population is indeed jitter-free.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example admission_control
//! ```

use flitnet::{NodeId, StreamId, VcPartition};
use mediaworm::{sim, AdmissionController, RouterConfig};
use netsim::SimRng;
use topo::Topology;
use traffic::{StreamClass, WorkloadBuilder, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::paper_default();
    let topology = Topology::fat_mesh(2, 2, 2, 4);
    let nodes = topology.node_count();

    // Admit real-time streams up to 70 % of any link on their route.
    let mut ac = AdmissionController::new(&topology, spec.link_bps, 0.7);
    let mut rng = SimRng::seed_from(99);
    let offered = 1200u32;
    let mut admitted = 0u32;
    for k in 0..offered {
        let src = rng.index(nodes);
        let dest = rng.index_excluding(nodes, src);
        if ac
            .admit(
                StreamId(k),
                NodeId(src as u32),
                NodeId(dest as u32),
                spec.stream_bps,
            )
            .is_ok()
        {
            admitted += 1;
        }
    }
    println!(
        "offered {offered} × 4 Mbps streams to {}; admitted {admitted} under a 70 % ceiling",
        topology.name()
    );

    // The admitted population corresponds to roughly this per-node load:
    let admitted_load = f64::from(admitted) * spec.stream_bps / spec.link_bps / nodes as f64;
    println!("admitted real-time load ≈ {admitted_load:.2} of link bandwidth per node");

    // Verify by simulation: run the admitted load (as a homogeneous
    // workload at the same level) and check jitter.
    let partition = VcPartition::all_real_time(16);
    let workload = WorkloadBuilder::new(nodes, partition)
        .spec(spec)
        .load(admitted_load.max(0.05))
        .mix(100.0, 0.0)
        .real_time_class(StreamClass::Vbr)
        .seed(100)
        .build();
    let out = sim::run(&topology, workload, &RouterConfig::default(), 0.05, 0.2);
    println!(
        "simulated at that load: d̄ = {:.2} ms, σ_d = {:.2} ms → {}",
        out.jitter.mean_ms,
        out.jitter.std_ms,
        if out.is_jitter_free(33.0, 1.0) {
            "jitter-free ✓ (the controller's ceiling is safe)"
        } else {
            "jittery ✗ (ceiling too optimistic)"
        }
    );
}
