//! A video-on-demand capacity study: how many simultaneous MPEG-2 streams
//! can one MediaWorm switch serve jitter-free, and what does the choice of
//! scheduler cost?
//!
//! This is the workload the paper's introduction motivates: a cluster of
//! video servers feeding clients through one 8-port switch. We sweep the
//! number of streams per server upward until delivery stops being
//! jitter-free, for both the conventional FIFO wormhole router and
//! MediaWorm's Virtual Clock — reproducing the headline claim that the
//! rate-based scheduler buys roughly two extra load steps of jitter-free
//! capacity.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example video_server_cluster
//! ```

use flitnet::VcPartition;
use mediaworm::{sim, RouterConfig, SchedulerKind, SimOutcome};
use topo::Topology;
use traffic::{StreamClass, WorkloadBuilder, WorkloadSpec};

fn run_streams(streams_per_server: u32, sched: SchedulerKind) -> SimOutcome {
    let spec = WorkloadSpec::paper_default();
    let topology = Topology::single_switch(8);
    // All 16 VCs carry video; a light 10 % best-effort control channel
    // rides along on a 90:10 partition.
    let partition = VcPartition::from_mix(16, 90.0, 10.0);
    let video_load = f64::from(streams_per_server) * spec.stream_bps / spec.link_bps;
    let total_load = video_load / 0.9;
    let workload = WorkloadBuilder::new(8, partition)
        .spec(spec)
        .load(total_load)
        .mix(90.0, 10.0)
        .real_time_class(StreamClass::Vbr)
        .seed(2026)
        .build();
    let router = RouterConfig::default().scheduler(sched);
    sim::run(&topology, workload, &router, 0.05, 0.2)
}

fn main() {
    println!("VOD capacity: 4 Mbps MPEG-2 streams per server, 400 Mbps links\n");
    println!(
        "{:>8}  {:>14}  {:>22}  {:>22}",
        "streams", "video load", "FIFO (d̄ / σ_d ms)", "MediaWorm (d̄ / σ_d ms)"
    );
    let mut fifo_limit = None;
    let mut vc_limit = None;
    for streams in [40u32, 50, 60, 65, 70, 75, 80] {
        let fifo = run_streams(streams, SchedulerKind::Fifo);
        let vc = run_streams(streams, SchedulerKind::VirtualClock);
        println!(
            "{:>8}  {:>13.2}  {:>10.2} / {:>6.2}  {:>12.2} / {:>6.2}",
            streams,
            f64::from(streams) * 4.0 / 400.0,
            fifo.jitter.mean_ms,
            fifo.jitter.std_ms,
            vc.jitter.mean_ms,
            vc.jitter.std_ms
        );
        if fifo.is_jitter_free(33.0, 0.5) {
            fifo_limit = Some(streams);
        }
        if vc.is_jitter_free(33.0, 0.5) {
            vc_limit = Some(streams);
        }
    }
    println!();
    println!(
        "jitter-free capacity per server: FIFO ≤ {} streams, MediaWorm ≤ {} streams",
        fifo_limit.map_or("<40".to_string(), |s| s.to_string()),
        vc_limit.map_or("<40".to_string(), |s| s.to_string()),
    );
}
