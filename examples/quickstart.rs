//! Quickstart: simulate an 8-port MediaWorm switch carrying four MPEG-2
//! video streams per node plus background best-effort traffic, and print
//! the QoS metrics the paper reports.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use flitnet::VcPartition;
use mediaworm::{sim, RouterConfig, SchedulerKind};
use topo::Topology;
use traffic::{StreamClass, WorkloadBuilder};

fn main() {
    // The paper's canonical switch: 8 ports, 16 VCs per physical channel,
    // multiplexed crossbar, Virtual Clock at the crossbar input mux.
    let topology = Topology::single_switch(8);
    let router = RouterConfig::default().scheduler(SchedulerKind::VirtualClock);

    // A 50:50 mix of 4 Mbps MPEG-2 VBR streams and best-effort messages,
    // at 60 % input load. Half of the 16 VCs serve each class.
    let partition = VcPartition::from_mix(16, 50.0, 50.0);
    let workload = WorkloadBuilder::new(topology.node_count(), partition)
        .load(0.6)
        .mix(50.0, 50.0)
        .real_time_class(StreamClass::Vbr)
        .seed(7)
        .build();

    println!(
        "simulating {} VBR streams + best-effort over {} …",
        workload.real_time_stream_count(),
        topology.name()
    );

    // 50 ms warm-up, 200 ms measured (simulated time).
    let out = sim::run(&topology, workload, &router, 0.05, 0.2);

    println!();
    println!(
        "frame delivery interval  d̄  = {:6.2} ms  (source: 33.00 ms)",
        out.jitter.mean_ms
    );
    println!(
        "delivery jitter          σ_d = {:6.2} ms",
        out.jitter.std_ms
    );
    println!(
        "best-effort latency          = {:6.1} µs over {} messages",
        out.be_mean_latency_us, out.be_msgs
    );
    println!("frames delivered             = {}", out.jitter.frames);
    println!();
    if out.is_jitter_free(33.0, 1.0) {
        println!("verdict: jitter-free video delivery ✓");
    } else {
        println!("verdict: the real-time class is jittery at this load");
    }
}
